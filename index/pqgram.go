package index

import (
	"math"
	"sync"

	"repro/internal/bounds"
	"repro/internal/tree"
)

// PQGram is a pq-gram inverted index for threshold similarity joins
// (Augsten, Böhlen, Gamper — references [4,5] of the RTED paper). Each
// indexed tree contributes its pq-gram profile: the multiset of
// serialized label tuples obtained by sliding a window of q consecutive
// children under a stem of the node and its p−1 nearest ancestors. An
// inverted posting list maps every gram to the trees containing it, so a
// query generates exactly the trees sharing at least one gram — one
// posting-list merge instead of a corpus scan — and ranks them by the
// pq-gram distance
//
//	dist(F, G) = 1 − 2·|P(F) ∩ P(G)| / (|P(F)| + |P(G)|)
//
// computed for free from the intersection counts of the same merge.
//
// # Completeness
//
// The pq-gram distance does not lower-bound the standard tree edit
// distance (it bounds a fanout-weighted variant), so gram overlap alone
// cannot prune exactly. What does hold, for p = 1, is a counting
// guarantee: a single unit-cost edit operation perturbs the grams
// anchored at most at two nodes of a tree — the edited node and its
// parent (stems have no ancestors when p = 1, so no other node's grams
// mention the edited one). Across a script of k operations at most 2k
// nodes of either tree are ever touched; every untouched node of F
// survives into G with its label and child list intact, so its anchored
// grams — at least one per node — appear identically in both profiles.
// Hence, counting multiset instances,
//
//	|P(F) ∩ P(G)| ≥ max(|F|, |G|) − 2k,
//
// and contrapositively a pair sharing c gram instances needs at least
// ⌈(max(|F|,|G|) − c)/2⌉ operations. CandidatesBelow applies this count
// bound during the posting-list merge — trees whose overlap deficit
// already prices them at ≥ τ are never materialized as candidates — and
// its zero-overlap special case (c = 0 forces both trees under 2k
// nodes) is the small-tree fringe sweep that keeps the generator
// complete: the surviving gram-sharers plus the fringe provably contain
// every true match.
//
// For p ≥ 2 the number of grams a single edit perturbs grows with the
// fanout of the edited region (a renamed node sits in the stem of every
// descendant within p−1 levels), so no corpus-independent small-tree
// fringe exists and the same sweep makes the index a high-recall
// heuristic rather than an exact generator — Complete reports which case
// an index is in. Joins that must be exact (batch.JoinIndexed) use p = 1;
// larger p buys a more structure-sensitive ranking for approximate
// workloads such as top-k candidate ordering.
//
// Like Histogram, a PQGram indexes trees under stable ids (Add/Put),
// supports Delete and Put-replacement through generation-tombstoned
// postings with automatic compaction, and serves concurrent probes over
// hash-sharded posting lists.
type PQGram struct {
	p, q int

	kmu sync.Mutex
	ids map[string]int32 // gram interner
	iv  inverted
}

// NewPQGram returns an empty pq-gram index with the given stem length p
// and base length q; both must be ≥ 1. Only p = 1 yields a provably
// complete candidate generator (see the type comment); the conventional
// profile parameterization p = q = 2 remains available for approximate
// ranking.
func NewPQGram(p, q int) *PQGram {
	if p < 1 || q < 1 {
		panic("index: pq-gram parameters must be positive")
	}
	return &PQGram{p: p, q: q, ids: make(map[string]int32)}
}

// P returns the stem length of the index's grams.
func (ix *PQGram) P() int { return ix.p }

// Q returns the base length of the index's grams.
func (ix *PQGram) Q() int { return ix.q }

// Complete reports whether CandidatesBelow is a provably complete
// generator (true exactly when p = 1).
func (ix *PQGram) Complete() bool { return ix.p == 1 }

// Len returns the number of live (not deleted) indexed trees.
func (ix *PQGram) Len() int { return ix.iv.liveCount() }

// Size returns the node count of the indexed tree id, or 0 if no live
// tree is indexed under it.
func (ix *PQGram) Size(id int) int {
	sz, _, alive := ix.iv.meta(int32(id))
	if !alive {
		return 0
	}
	return int(sz)
}

// Add indexes t under the next unused id (insertion order when trees are
// never deleted) and returns that id.
func (ix *PQGram) Add(t *tree.Tree) int {
	id := ix.iv.reserve()
	ix.Put(id, t)
	return id
}

// Put indexes t under the stable id of the caller's choosing, replacing
// whatever tree was indexed there (the old postings become tombstones).
func (ix *PQGram) Put(id int, t *tree.Tree) {
	grams := bounds.PQGramProfile(t, ix.p, ix.q) // sorted, so ids run-length cleanly
	ids := make([]int32, 0, len(grams))
	ix.kmu.Lock()
	for _, g := range grams {
		kid, ok := ix.ids[g]
		if !ok {
			kid = int32(len(ix.ids))
			ix.ids[g] = kid
		}
		ids = append(ids, kid)
	}
	ix.kmu.Unlock()
	ix.iv.put(id, t.Len(), runLength(ids))
}

// Delete removes the tree id from the index (its postings become
// tombstones, reclaimed by the next compaction). It reports whether a
// live tree was indexed under id.
func (ix *PQGram) Delete(id int) bool { return ix.iv.delete(id) }

// Compact rewrites the posting lists, dropping every tombstoned posting.
func (ix *PQGram) Compact() { ix.iv.compact() }

// CandidatesBelow appends to dst every live tree with id < q that shares
// at least one pq-gram with tree q — plus, for p = 1, the small-tree
// fringe that keeps the generator complete — in ascending id order, and
// returns the extended slice. Candidates ruled out by either lower
// bound — the size bound ||F|−|G||, or (p = 1 only) the gram-count
// bound ⌈(max(|F|,|G|) − |P(F) ∩ P(G)|)/2⌉ of the type comment — are
// filtered during the posting-list probe and never materialized; LB
// carries the sharper of the two bounds and Score the pq-gram distance,
// so callers can verify the most similar candidates first. Safe for
// concurrent use with other probes and with Add/Put/Delete.
func (ix *PQGram) CandidatesBelow(q int, tau float64, dst []Candidate) []Candidate {
	dst = dst[:0]
	if tau <= 0 || q <= 0 {
		return dst
	}
	sc := getScratch()
	defer sc.release()
	nq32, qProfLen, ok := ix.iv.accumulate(q, sc)
	if !ok {
		return dst
	}
	nq := int(nq32)
	// A candidate survives iff its integer ops lower bound admits some
	// k ≤ maxOps, i.e. lb ≤ maxOps ⟺ lb < tau for integer lb ≥ 0.
	maxOps := maxOpsBelow(tau)
	counting := ix.p == 1 // the count bound is a theorem only for p = 1
	for _, t := range sc.touched {
		nt, tProfLen, alive := ix.iv.meta(t)
		if !alive {
			continue
		}
		lb := nq - int(nt)
		if lb < 0 {
			lb = -lb
		}
		if counting {
			// Count filter: within k unit edits the pair shares at least
			// max(|F|,|G|) − 2k gram instances, so the overlap deficit
			// prices a minimum number of operations.
			mx := nq
			if int(nt) > mx {
				mx = int(nt)
			}
			if gap := mx - int(sc.common[t]); gap > 0 && (gap+1)/2 > lb {
				lb = (gap + 1) / 2
			}
		}
		if lb <= maxOps {
			score := 1 - 2*float64(sc.common[t])/float64(qProfLen+tProfLen)
			dst = append(dst, Candidate{ID: int(t), LB: float64(lb), Score: score})
		}
	}
	// Zero-overlap fringe: with p = 1, k < tau edits can only erase every
	// shared gram when both trees have ≤ 2k nodes. The doubling must
	// saturate: maxOpsBelow caps at MaxInt32, which 2× overflows where
	// int is 32 bits, and a wrapped-negative limit would silently skip
	// the fringe and break completeness.
	limit := maxOpsBelow(tau)
	if limit < math.MaxInt/2 {
		limit *= 2
	} else {
		limit = math.MaxInt
	}
	if nq <= limit {
		ix.iv.smallIDs(limit, sc)
		for _, t := range sc.fringe {
			if int(t) >= q || sc.common[t] != 0 {
				continue
			}
			nt, _, alive := ix.iv.meta(t)
			if !alive {
				continue
			}
			lb := nq - int(nt)
			if lb < 0 {
				lb = -lb
			}
			if counting {
				// Zero shared instances: the count bound with c = 0.
				mx := nq
				if int(nt) > mx {
					mx = int(nt)
				}
				if (mx+1)/2 > lb {
					lb = (mx + 1) / 2
				}
			}
			if lb <= maxOps {
				dst = append(dst, Candidate{ID: int(t), LB: float64(lb), Score: 1})
			}
		}
	}
	sortByID(dst)
	return dst
}

// PQGramDistance is the standalone normalized pq-gram distance in [0, 1]
// between two trees: 1 − 2·|P(F) ∩ P(G)| / (|P(F)| + |P(G)|) over their
// (p, q)-gram profiles. It is a pseudo-metric — fast, and a faithful
// proxy for tree similarity on many workloads — but NOT a lower bound of
// the unit-cost tree edit distance, so use it for ranking and candidate
// generation, never for exact pruning.
func PQGramDistance(f, g *tree.Tree, p, q int) float64 {
	return bounds.PQGram(f, g, p, q)
}
