package index

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Candidate is one generated join candidate: an indexed tree that may lie
// within the query threshold. Every pair the index does NOT generate is
// guaranteed to be at distance ≥ the threshold (see the per-index
// completeness notes), so downstream verification never has to look at
// non-candidates.
type Candidate struct {
	// ID is the candidate tree's stable id (the value Add returned, or
	// the id the caller chose with Put).
	ID int
	// LB is a valid lower bound on the unit-cost tree edit distance
	// between the query and the candidate, always strictly below the
	// generating threshold. The histogram index derives it from the label
	// intersection; the pq-gram index reports the sharper of the size
	// bound and (p = 1) the gram-count bound of the PQGram type comment.
	LB float64
	// Score orders candidates from most to least promising (smaller is
	// better): LB for histogram candidates, the pq-gram distance in
	// [0, 1] for pq-gram candidates.
	Score float64
}

// numShards is the posting-list shard count. Key ids are interner-dense,
// so masking the low bits spreads keys uniformly; a power of two keeps
// the shard selection a single AND. 16 shards comfortably exceed the
// worker counts the batch engine runs, and a future distributed join can
// own disjoint shard ranges.
const numShards = 16

// posting is one entry of an inverted list: a tree containing the key,
// the tree's generation when the posting was written, and the key's
// multiplicity in that tree. A posting whose generation no longer
// matches its tree's is a tombstone — the tree was deleted or replaced —
// and is skipped by probes and dropped by compaction.
type posting struct {
	tree  int32
	gen   uint32
	count int32
}

// keyCount is one entry of a tree's profile: an interned key id and its
// multiplicity, sorted by id within the profile.
type keyCount struct {
	id    int32
	count int32
}

// treeMeta is the per-tree record of the inverted store. gen is the
// published generation: only postings carrying exactly it (on a live
// tree) are visible to probes. nextGen hands out generations to
// in-flight puts, so a replacement writes its postings invisibly first
// and becomes visible in one atomic publish step — probes see the old
// tree or the new one, never a half-replaced in-between.
type treeMeta struct {
	size    int32
	gen     uint32
	nextGen uint32
	alive   bool
	profLen int32 // Σ multiplicities of prof (|P(t)| for pq-grams)
	prof    []keyCount
}

// shard is one lock-striped slice of the posting lists: every key id
// with the same low bits lives here, under a lock of its own, so
// concurrent Adds append to disjoint shards and probes only share
// read locks.
type shard struct {
	mu    sync.RWMutex
	lists map[int32][]posting
}

// inverted is the bookkeeping shared by both index kinds: per-tree
// metadata under stable ids, the hash-sharded inverted posting lists,
// and a size-ordered id list for the small-tree sweeps.
//
// Locking: mu guards the tree table; each shard guards its own lists;
// sizeMu guards the lazily rebuilt size order. The only place two locks
// nest is mu (or sizeMu) taken before a shard lock — never the reverse —
// so Add, Delete, probes and compaction can all run concurrently.
type inverted struct {
	mu    sync.RWMutex
	trees []treeMeta // indexed by stable id; ids should be dense
	live  int

	sizeMu    sync.Mutex
	bySize    []int32 // live tree ids sorted by (size, id)
	sizes     []int32 // sizes parallel to bySize, frozen at rebuild
	sizeDirty bool

	shards [numShards]shard

	// Tombstone accounting for the compaction trigger. Approximate under
	// concurrency, which is fine for a heuristic.
	total atomic.Int64
	dead  atomic.Int64
}

func (iv *inverted) shardFor(key int32) *shard {
	return &iv.shards[uint32(key)&(numShards-1)]
}

// reserve hands out the next unused stable id (max id ever used, plus
// one) for the auto-id Add path, extending the table so concurrent
// reservations stay distinct.
func (iv *inverted) reserve() int {
	iv.mu.Lock()
	defer iv.mu.Unlock()
	iv.trees = append(iv.trees, treeMeta{})
	return len(iv.trees) - 1
}

// markSizeDirty schedules a rebuild of the size order.
func (iv *inverted) markSizeDirty() {
	iv.sizeMu.Lock()
	iv.sizeDirty = true
	iv.sizeMu.Unlock()
}

// put installs (or replaces) the tree id with the given size and
// profile, in three phases: reserve a generation, append the new
// postings (invisible — probes only accept the published generation),
// then publish meta and generation in one locked step. A probe
// concurrent with put therefore sees the old tree or the new one in
// full, never a half-written mix; old postings become tombstones at the
// instant the new ones become live.
func (iv *inverted) put(id int, size int, prof []keyCount) {
	if id < 0 {
		panic("index: negative tree id")
	}
	iv.mu.Lock()
	for id >= len(iv.trees) {
		iv.trees = append(iv.trees, treeMeta{})
	}
	m := &iv.trees[id]
	m.nextGen++
	gen := m.nextGen
	iv.mu.Unlock()

	for _, kc := range prof {
		s := iv.shardFor(kc.id)
		s.mu.Lock()
		if s.lists == nil {
			s.lists = make(map[int32][]posting)
		}
		s.lists[kc.id] = append(s.lists[kc.id], posting{tree: int32(id), gen: gen, count: kc.count})
		s.mu.Unlock()
	}
	iv.total.Add(int64(len(prof)))

	iv.mu.Lock()
	m = &iv.trees[id]
	if gen > m.gen {
		if m.alive {
			iv.dead.Add(int64(len(m.prof)))
		} else {
			iv.live++
		}
		m.gen = gen
		m.size = int32(size)
		m.alive = true
		m.prof = prof
		m.profLen = 0
		for _, kc := range prof {
			m.profLen += kc.count
		}
	} else {
		// A racing put to the same id reserved a later generation and
		// published first; this put's postings are stillborn tombstones.
		iv.dead.Add(int64(len(prof)))
	}
	iv.mu.Unlock()
	iv.markSizeDirty()
	iv.maybeCompact()
}

// delete tombstones the tree id. It reports whether the id was alive.
func (iv *inverted) delete(id int) bool {
	iv.mu.Lock()
	if id < 0 || id >= len(iv.trees) || !iv.trees[id].alive {
		iv.mu.Unlock()
		return false
	}
	m := &iv.trees[id]
	m.alive = false
	iv.live--
	ndead := int64(len(m.prof))
	iv.mu.Unlock()
	iv.dead.Add(ndead)
	iv.markSizeDirty()
	iv.maybeCompact()
	return true
}

// maybeCompact runs a compaction once tombstones dominate the lists.
func (iv *inverted) maybeCompact() {
	if d := iv.dead.Load(); d > 256 && d*2 > iv.total.Load() {
		iv.compact()
	}
}

// compact rewrites every posting list, dropping tombstones (postings of
// dead trees or stale generations). It holds the tree table's write lock
// for the sweep, so it is stop-the-world for mutators and probes — run
// rarely by design; the incremental cost of a tombstone until then is
// one generation check per probe touching it.
func (iv *inverted) compact() {
	iv.mu.Lock()
	defer iv.mu.Unlock()
	var kept int64
	for si := range iv.shards {
		s := &iv.shards[si]
		s.mu.Lock()
		for key, list := range s.lists {
			w := 0
			for _, p := range list {
				m := &iv.trees[p.tree]
				// Keep the published generation of live trees, and any
				// generation beyond it: those belong to an in-flight put
				// that has appended but not yet published.
				if (m.alive && m.gen == p.gen) || p.gen > m.gen {
					list[w] = p
					w++
				}
			}
			if w == 0 {
				delete(s.lists, key)
			} else {
				s.lists[key] = list[:w]
			}
			kept += int64(w)
		}
		s.mu.Unlock()
	}
	// Dead trees have no postings left anywhere, so their records can be
	// dropped wholesale (generations only matter while stale postings
	// exist). The table itself keeps its length: ids are forever.
	for id := range iv.trees {
		if !iv.trees[id].alive {
			iv.trees[id].prof = nil
		}
	}
	iv.total.Store(kept)
	iv.dead.Store(0)
}

// probeScratch is the per-query accumulator: common[t] sums the multiset
// intersection with the query, touched records the nonzero entries for
// O(|touched|) reset. Pooled so concurrent probes don't share state.
type probeScratch struct {
	common  []int32
	touched []int32
	fringe  []int32
}

var probePool = sync.Pool{New: func() any { return &probeScratch{} }}

func getScratch() *probeScratch {
	return probePool.Get().(*probeScratch)
}

func (sc *probeScratch) release() {
	for _, t := range sc.touched {
		sc.common[t] = 0
	}
	sc.touched = sc.touched[:0]
	sc.fringe = sc.fringe[:0]
	probePool.Put(sc)
}

// accumulate merges the posting lists of q's profile keys, summing the
// multiset intersection size into sc.common[t] for every live tree t < q
// that shares at least one key with q. It returns q's metadata (size,
// profLen) and whether q is alive. The tree table's read lock is held
// across the merge so generation checks see a consistent view.
func (iv *inverted) accumulate(q int, sc *probeScratch) (qsize int32, qprofLen int32, ok bool) {
	iv.mu.RLock()
	defer iv.mu.RUnlock()
	if q < 0 || q >= len(iv.trees) || !iv.trees[q].alive {
		return 0, 0, false
	}
	// The table cannot grow while the read lock is held, so sizing the
	// accumulator here makes every common[t] with t < q in bounds — both
	// in this merge and in the caller's fringe sweep, which only touches
	// ids below q.
	if len(sc.common) < len(iv.trees) {
		sc.common = make([]int32, len(iv.trees))
	}
	qm := &iv.trees[q]
	for _, kc := range qm.prof {
		s := iv.shardFor(kc.id)
		s.mu.RLock()
		for _, p := range s.lists[kc.id] {
			if int(p.tree) >= q {
				continue
			}
			m := &iv.trees[p.tree]
			if !m.alive || m.gen != p.gen {
				continue // tombstone
			}
			if sc.common[p.tree] == 0 {
				sc.touched = append(sc.touched, p.tree)
			}
			if p.count < kc.count {
				sc.common[p.tree] += p.count
			} else {
				sc.common[p.tree] += kc.count
			}
		}
		s.mu.RUnlock()
	}
	return qm.size, qm.profLen, true
}

// meta returns (size, profLen, alive) for one id under the read lock.
func (iv *inverted) meta(id int32) (int32, int32, bool) {
	iv.mu.RLock()
	defer iv.mu.RUnlock()
	if id < 0 || int(id) >= len(iv.trees) {
		return 0, 0, false
	}
	m := &iv.trees[id]
	return m.size, m.profLen, m.alive
}

// smallIDs appends to sc.fringe the ids of all live trees with size ≤
// limit, ascending by (size, id), rebuilding the size order if the index
// mutated since the last sweep. Callers re-check liveness afterwards:
// under concurrent mutation the sweep is a snapshot, not a transaction.
func (iv *inverted) smallIDs(limit int, sc *probeScratch) {
	iv.sizeMu.Lock()
	if iv.sizeDirty {
		iv.mu.RLock()
		iv.bySize = iv.bySize[:0]
		for id := range iv.trees {
			if iv.trees[id].alive {
				iv.bySize = append(iv.bySize, int32(id))
			}
		}
		sizes := make([]int32, len(iv.trees))
		for id := range iv.trees {
			sizes[id] = iv.trees[id].size
		}
		iv.mu.RUnlock()
		sort.Slice(iv.bySize, func(i, j int) bool {
			a, b := iv.bySize[i], iv.bySize[j]
			if sizes[a] != sizes[b] {
				return sizes[a] < sizes[b]
			}
			return a < b
		})
		iv.sizes = iv.sizes[:0]
		for _, id := range iv.bySize {
			iv.sizes = append(iv.sizes, sizes[id])
		}
		iv.sizeDirty = false
	}
	n := sort.Search(len(iv.bySize), func(i int) bool {
		return int(iv.sizes[i]) > limit
	})
	sc.fringe = append(sc.fringe, iv.bySize[:n]...)
	iv.sizeMu.Unlock()
}

// liveCount returns the number of live trees.
func (iv *inverted) liveCount() int {
	iv.mu.RLock()
	defer iv.mu.RUnlock()
	return iv.live
}

// maxOpsBelow returns the largest number of unit-cost edit operations a
// pair with distance strictly below tau can use: one less than tau for
// integral tau, ⌊tau⌋ otherwise (unit-cost distances are integers). It is
// negative for tau ≤ 0 — no pair qualifies — and saturates for huge or
// infinite thresholds.
func maxOpsBelow(tau float64) int {
	if math.IsInf(tau, 1) || tau >= math.MaxInt32 {
		return math.MaxInt32
	}
	if tau <= 0 {
		return -1
	}
	c := math.Ceil(tau)
	if c == tau {
		return int(tau) - 1
	}
	return int(c) - 1
}

// sortByID orders candidates by id, the order join drivers consume.
func sortByID(cs []Candidate) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].ID < cs[j].ID })
}
