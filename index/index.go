package index

import (
	"math"
	"sort"
)

// Candidate is one generated join candidate: an indexed tree that may lie
// within the query threshold. Every pair the index does NOT generate is
// guaranteed to be at distance ≥ the threshold (see the per-index
// completeness notes), so downstream verification never has to look at
// non-candidates.
type Candidate struct {
	// ID is the candidate tree's index id (the value Add returned).
	ID int
	// LB is a valid lower bound on the unit-cost tree edit distance
	// between the query and the candidate, always strictly below the
	// generating threshold. The histogram index derives it from the label
	// intersection; the pq-gram index only knows the size bound.
	LB float64
	// Score orders candidates from most to least promising (smaller is
	// better): LB for histogram candidates, the pq-gram distance in
	// [0, 1] for pq-gram candidates.
	Score float64
}

// posting is one entry of an inverted list: the id of a tree containing
// the key (ascending within a list, because ids are assigned in Add
// order) and the key's multiplicity in that tree.
type posting struct {
	tree  int32
	count int32
}

// keyCount is one entry of a tree's profile: an interned key id and its
// multiplicity, sorted by id within the profile.
type keyCount struct {
	id    int32
	count int32
}

// corpus is the bookkeeping shared by both index kinds: per-tree sizes
// and profiles, the inverted posting lists, a size-ordered id list for
// the small-tree sweeps, and the query-time intersection scratch.
//
// Queries mutate the scratch, so a corpus serves one query at a time.
type corpus struct {
	sizes    []int
	profs    [][]keyCount
	postings [][]posting

	bySize []int32 // tree ids sorted by (size, id); rebuilt after Add
	sorted bool

	common  []int32 // per-tree intersection accumulator
	touched []int32 // tree ids with common > 0, for O(|touched|) reset
}

// add indexes a profiled tree and returns its dense id.
func (c *corpus) add(size int, prof []keyCount) int {
	id := len(c.sizes)
	c.sizes = append(c.sizes, size)
	c.profs = append(c.profs, prof)
	for _, kc := range prof {
		for int(kc.id) >= len(c.postings) {
			c.postings = append(c.postings, nil)
		}
		c.postings[kc.id] = append(c.postings[kc.id], posting{tree: int32(id), count: kc.count})
	}
	c.sorted = false
	return id
}

// accumulate merges the posting lists of q's profile keys, summing the
// multiset intersection size into common[t] for every tree t < q that
// shares at least one key with q. Touched ids are recorded for reset.
func (c *corpus) accumulate(q int) {
	if len(c.common) < len(c.sizes) {
		c.common = make([]int32, len(c.sizes))
	}
	for _, kc := range c.profs[q] {
		for _, p := range c.postings[kc.id] {
			if int(p.tree) >= q {
				break // posting lists are id-ascending; the rest is ≥ q
			}
			if c.common[p.tree] == 0 {
				c.touched = append(c.touched, p.tree)
			}
			if p.count < kc.count {
				c.common[p.tree] += p.count
			} else {
				c.common[p.tree] += kc.count
			}
		}
	}
}

// reset clears the intersection accumulator after a query.
func (c *corpus) reset() {
	for _, t := range c.touched {
		c.common[t] = 0
	}
	c.touched = c.touched[:0]
}

// smallIDs returns the ids of all trees with size ≤ limit, ascending by
// (size, id). The slice is shared; callers must not retain it across Add.
func (c *corpus) smallIDs(limit int) []int32 {
	if !c.sorted {
		c.bySize = c.bySize[:0]
		for id := range c.sizes {
			c.bySize = append(c.bySize, int32(id))
		}
		sort.Slice(c.bySize, func(i, j int) bool {
			a, b := c.bySize[i], c.bySize[j]
			if c.sizes[a] != c.sizes[b] {
				return c.sizes[a] < c.sizes[b]
			}
			return a < b
		})
		c.sorted = true
	}
	n := sort.Search(len(c.bySize), func(i int) bool {
		return c.sizes[c.bySize[i]] > limit
	})
	return c.bySize[:n]
}

// maxOpsBelow returns the largest number of unit-cost edit operations a
// pair with distance strictly below tau can use: one less than tau for
// integral tau, ⌊tau⌋ otherwise (unit-cost distances are integers). It is
// negative for tau ≤ 0 — no pair qualifies — and saturates for huge or
// infinite thresholds.
func maxOpsBelow(tau float64) int {
	if math.IsInf(tau, 1) || tau >= math.MaxInt32 {
		return math.MaxInt32
	}
	if tau <= 0 {
		return -1
	}
	c := math.Ceil(tau)
	if c == tau {
		return int(tau) - 1
	}
	return int(c) - 1
}

// sortByID orders candidates by id, the order join drivers consume.
func sortByID(cs []Candidate) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].ID < cs[j].ID })
}
