package index_test

import (
	"math"
	"math/rand"
	"testing"

	ted "repro"
	"repro/gen"
	"repro/index"
)

// mutableIndex is the incremental-maintenance surface shared by both
// index kinds, as the tests exercise it.
type mutableIndex interface {
	Put(id int, t *ted.Tree)
	Delete(id int) bool
	CandidatesBelow(q int, tau float64, dst []index.Candidate) []index.Candidate
	Compact()
	Len() int
}

// probeAll collects every candidate pair of a probe-below sweep.
func probeAll(probe func(q int, buf []index.Candidate) []index.Candidate, ids []int, tau float64) map[[2]int]float64 {
	out := map[[2]int]float64{}
	var buf []index.Candidate
	for _, q := range ids {
		buf = probe(q, buf)
		for _, c := range buf {
			out[[2]int{c.ID, q}] = c.LB
		}
	}
	return out
}

// TestDeleteReplaceEquivalence is the incremental-maintenance oracle: an
// index that went through interleaved Put/Delete/Replace must generate
// exactly the candidates of a fresh index built from the surviving trees
// under the same ids — for both index kinds, before and after compaction.
func TestDeleteReplaceEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mk := func() []*ted.Tree {
		var ts []*ted.Tree
		for i := 0; i < 20; i++ {
			ts = append(ts, gen.Random(rng.Int63(), gen.RandomSpec{
				Size: 1 + rng.Intn(25), MaxDepth: 6, MaxFanout: 4, Labels: 4,
			}))
		}
		return ts
	}
	initial, replacements := mk(), mk()

	builders := map[string]func() mutableIndex{
		"histogram": func() mutableIndex { return index.NewHistogram() },
		"pqgram":    func() mutableIndex { return index.NewPQGram(1, 2) },
	}
	for name, build := range builders {
		incr := build()
		live := map[int]*ted.Tree{}
		for id, tr := range initial {
			incr.Put(id, tr)
			live[id] = tr
		}
		// Interleave deletes and replaces, including delete-then-revive.
		for _, id := range []int{3, 7, 11} {
			incr.Delete(id)
			delete(live, id)
		}
		for _, id := range []int{0, 7, 14, 19} {
			incr.Put(id, replacements[id])
			live[id] = replacements[id]
		}
		if incr.Delete(3) {
			t.Fatalf("%s: double delete reported success", name)
		}

		fresh := build()
		var ids []int
		for id := 0; id < len(initial); id++ {
			if tr, ok := live[id]; ok {
				fresh.Put(id, tr)
				ids = append(ids, id)
			}
		}
		if incr.Len() != fresh.Len() {
			t.Fatalf("%s: live count %d, fresh %d", name, incr.Len(), fresh.Len())
		}
		for _, tau := range []float64{1, 4.5, 12, math.Inf(1)} {
			want := probeAll(func(q int, buf []index.Candidate) []index.Candidate {
				return fresh.CandidatesBelow(q, tau, buf)
			}, ids, tau)
			for pass := 0; pass < 2; pass++ {
				if pass == 1 {
					incr.Compact()
				}
				got := probeAll(func(q int, buf []index.Candidate) []index.Candidate {
					return incr.CandidatesBelow(q, tau, buf)
				}, ids, tau)
				if len(got) != len(want) {
					t.Fatalf("%s tau=%v pass=%d: %d candidate pairs, want %d", name, tau, pass, len(got), len(want))
				}
				for k, lb := range want {
					if g, ok := got[k]; !ok || g != lb {
						t.Fatalf("%s tau=%v pass=%d: pair %v LB=%v, want %v (present=%v)", name, tau, pass, k, g, lb, ok)
					}
				}
			}
		}
	}
}

// TestSnapshotRestore pins the persistence contract: a restored index
// generates bit-identical candidates (IDs, LBs, Scores) and keeps
// allocating fresh ids above everything the snapshot's writer used.
func TestSnapshotRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var trees []*ted.Tree
	for i := 0; i < 16; i++ {
		trees = append(trees, gen.Random(rng.Int63(), gen.RandomSpec{
			Size: 1 + rng.Intn(20), MaxDepth: 6, MaxFanout: 4, Labels: 5,
		}))
	}
	h := index.NewHistogram()
	p := index.NewPQGram(1, 3)
	for _, tr := range trees {
		h.Add(tr)
		p.Add(tr)
	}
	h.Delete(4)
	p.Delete(4)

	h2, err := index.RestoreHistogram(h.Snapshot())
	if err != nil {
		t.Fatalf("RestoreHistogram: %v", err)
	}
	p2, err := index.RestorePQGram(1, 3, p.Snapshot())
	if err != nil {
		t.Fatalf("RestorePQGram: %v", err)
	}
	if h2.Len() != h.Len() || p2.Len() != p.Len() {
		t.Fatalf("restored live counts (%d, %d), want (%d, %d)", h2.Len(), p2.Len(), h.Len(), p.Len())
	}
	for _, tau := range []float64{2, 7.5, math.Inf(1)} {
		for q := range trees {
			a := h.CandidatesBelow(q, tau, nil)
			b := h2.CandidatesBelow(q, tau, nil)
			if len(a) != len(b) {
				t.Fatalf("histogram q=%d tau=%v: %d vs %d candidates", q, tau, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("histogram q=%d tau=%v: candidate %d %+v vs %+v", q, tau, i, a[i], b[i])
				}
			}
			c := p.CandidatesBelow(q, tau, nil)
			d := p2.CandidatesBelow(q, tau, nil)
			if len(c) != len(d) {
				t.Fatalf("pqgram q=%d tau=%v: %d vs %d candidates", q, tau, len(c), len(d))
			}
			for i := range c {
				if c[i] != d[i] {
					t.Fatalf("pqgram q=%d tau=%v: candidate %d %+v vs %+v", q, tau, i, c[i], d[i])
				}
			}
		}
	}
	// A deleted id stays burned after restore: the next Add must not
	// alias it.
	if id := h2.Add(trees[0]); id != len(trees) {
		t.Fatalf("restored histogram Add assigned id %d, want %d", id, len(trees))
	}
	// Corrupt snapshots must error, not panic.
	s := h.Snapshot()
	s.Entries[0].Prof[0].Key = int32(len(s.Keys)) + 7
	if _, err := index.RestoreHistogram(s); err == nil {
		t.Fatal("out-of-range key accepted")
	}
	s = h.Snapshot()
	s.Entries[0].ID = s.Entries[1].ID
	if _, err := index.RestoreHistogram(s); err == nil {
		t.Fatal("duplicate entry id accepted")
	}
}
