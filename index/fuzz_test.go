package index_test

import (
	"math"
	"testing"

	ted "repro"
	"repro/index"
	"repro/internal/bounds"
	"repro/internal/cost"
	"repro/internal/zs"
)

// profileCommon counts the multiset intersection of two sorted pq-gram
// profiles — the quantity the inverted index accumulates during a probe.
func profileCommon(a, b []string) int {
	common, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			common++
			i++
			j++
		}
	}
	return common
}

// FuzzPQGramCountFilter fuzzes the p = 1 count-based candidate filter
// against an enumerate-everything oracle: for every indexed tree the
// oracle recomputes the gram overlap from scratch profiles and applies
// the documented lower bound max(||F|−|G||, ⌈(max(|F|,|G|)−common)/2⌉).
// The probe's candidate set and LB values must match the oracle exactly,
// and — the completeness theorem — the oracle bound must never exceed
// the true unit-cost edit distance, so no true match is ever filtered.
//
// Run continuously with: go test -fuzz=FuzzPQGramCountFilter ./index
func FuzzPQGramCountFilter(f *testing.F) {
	f.Add("{a{b}{c}}", "{a{b{d}}}", "{a}", "{a{b}{c}}", 2.5, uint8(0))
	f.Add("{x{x{x}}}", "{y}", "{x{y}{x}}", "{x{x}{x}}", 1.0, uint8(1))
	f.Add("{r{a}{b}{c}}", "{r{c}{b}{a}}", "{r}", "{q{a}{b}}", math.Inf(1), uint8(2))
	f.Add("{a}", "{b}", "{c}", "{d}", 0.0, uint8(0))

	f.Fuzz(func(t *testing.T, s0, s1, s2, qs string, tau float64, qsel uint8) {
		if math.IsNaN(tau) {
			t.Skip()
		}
		q := 1 + int(qsel)%3
		var trees []*ted.Tree
		for _, s := range []string{s0, s1, s2, qs} {
			tr, err := ted.Parse(s)
			if err != nil || tr.Len() > 40 {
				t.Skip()
			}
			trees = append(trees, tr)
		}
		ix := index.NewPQGram(1, q)
		for _, tr := range trees {
			ix.Add(tr)
		}
		query := len(trees) - 1
		got := ix.CandidatesBelow(query, tau, nil)

		qt := trees[query]
		qProf := bounds.PQGramProfile(qt, 1, q)
		byID := make(map[int]index.Candidate, len(got))
		for _, c := range got {
			byID[c.ID] = c
		}
		want := 0
		for id := 0; id < query; id++ {
			tt := trees[id]
			common := profileCommon(qProf, bounds.PQGramProfile(tt, 1, q))
			lb := qt.Len() - tt.Len()
			if lb < 0 {
				lb = -lb
			}
			mx := qt.Len()
			if tt.Len() > mx {
				mx = tt.Len()
			}
			if gap := mx - common; gap > 0 && (gap+1)/2 > lb {
				lb = (gap + 1) / 2
			}
			if d := zs.Dist(qt, tt, cost.Unit{}); float64(lb) > d {
				t.Fatalf("count bound %d above true distance %v for pair %d\nQ=%s\nT=%s", lb, d, id, qs, trees[id])
			}
			c, in := byID[id]
			if wantIn := float64(lb) < tau; in != wantIn {
				t.Fatalf("candidate %d: generated=%v oracle=%v (lb=%d tau=%v)\nQ=%s\nT=%s",
					id, in, wantIn, lb, tau, qs, trees[id])
			}
			if in {
				want++
				if c.LB != float64(lb) {
					t.Fatalf("candidate %d: LB=%v, oracle %d", id, c.LB, lb)
				}
			}
		}
		if len(got) != want {
			t.Fatalf("%d candidates generated, oracle wants %d", len(got), want)
		}
	})
}
