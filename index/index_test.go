package index_test

import (
	"math"
	"math/rand"
	"testing"

	ted "repro"
	"repro/gen"
	"repro/index"
)

// corpus draws a mixed-shape collection with a small label alphabet so
// thresholds produce both matches and non-matches.
func corpus(seed int64, n, size int) []*ted.Tree {
	rng := rand.New(rand.NewSource(seed))
	out := []*ted.Tree{
		gen.LeftBranch(size),
		gen.RightBranch(size),
		gen.FullBinary(size),
		gen.ZigZag(size),
	}
	for len(out) < n {
		out = append(out, gen.Random(rng.Int63(), gen.RandomSpec{
			Size: 1 + rng.Intn(size), MaxDepth: 8, MaxFanout: 5, Labels: 3,
		}))
	}
	return out
}

// labelLB is the brute-force label-histogram lower bound the Histogram
// index must reproduce pair for pair.
func labelLB(f, g *ted.Tree) float64 {
	hf := map[string]int{}
	for i := 0; i < f.Len(); i++ {
		hf[f.Label(i)]++
	}
	common := 0
	hg := map[string]int{}
	for i := 0; i < g.Len(); i++ {
		hg[g.Label(i)]++
	}
	for l, cf := range hf {
		if cg := hg[l]; cg < cf {
			common += cg
		} else {
			common += cf
		}
	}
	m := f.Len()
	if g.Len() > m {
		m = g.Len()
	}
	return float64(m - common)
}

// TestHistogramMatchesBruteForce checks that the posting-list merge
// reproduces the brute-force label-histogram bound exactly: for every
// (query, threshold), the candidate set is {t < q : lb(t, q) < tau} with
// the right LB values.
func TestHistogramMatchesBruteForce(t *testing.T) {
	trees := corpus(1, 14, 30)
	ix := index.NewHistogram()
	for _, tr := range trees {
		ix.Add(tr)
	}
	var buf []index.Candidate
	for _, tau := range []float64{0, 1, 2.5, 5, 12, 40, math.Inf(1)} {
		for q := range trees {
			buf = ix.CandidatesBelow(q, tau, buf)
			want := map[int]float64{}
			for j := 0; j < q; j++ {
				if lb := labelLB(trees[q], trees[j]); lb < tau {
					want[j] = lb
				}
			}
			if len(buf) != len(want) {
				t.Fatalf("tau=%v q=%d: %d candidates, want %d (%v)", tau, q, len(buf), len(want), buf)
			}
			last := -1
			for _, c := range buf {
				if c.ID <= last {
					t.Fatalf("tau=%v q=%d: candidates not id-ascending: %v", tau, q, buf)
				}
				last = c.ID
				if lb, ok := want[c.ID]; !ok || lb != c.LB {
					t.Fatalf("tau=%v q=%d: candidate %d LB=%v, want %v (present=%v)", tau, q, c.ID, c.LB, lb, ok)
				}
			}
		}
	}
}

// TestPQGramComplete checks the p=1 completeness guarantee against the
// exact distance: every true match must be generated, at every threshold.
func TestPQGramComplete(t *testing.T) {
	trees := corpus(2, 14, 24)
	ix := index.NewPQGram(1, 2)
	if !ix.Complete() {
		t.Fatal("(1,2)-gram index must report Complete")
	}
	for _, tr := range trees {
		ix.Add(tr)
	}
	var buf []index.Candidate
	for _, tau := range []float64{1, 2, 4.5, 9, 25, math.Inf(1)} {
		for q := range trees {
			buf = ix.CandidatesBelow(q, tau, buf)
			got := map[int]bool{}
			for _, c := range buf {
				got[c.ID] = true
				if c.LB >= tau {
					t.Fatalf("tau=%v q=%d: candidate %d carries LB %v ≥ tau", tau, q, c.ID, c.LB)
				}
				if d := ted.Distance(trees[q], trees[c.ID]); c.LB > d {
					t.Fatalf("tau=%v q=%d: candidate %d LB %v exceeds true distance %v", tau, q, c.ID, c.LB, d)
				}
			}
			for j := 0; j < q; j++ {
				if d := ted.Distance(trees[q], trees[j]); d < tau && !got[j] {
					t.Fatalf("tau=%v: true match (%d,%d) at distance %v was not generated", tau, j, q, d)
				}
			}
		}
	}
}

// TestPQGramCompleteAdversarial drives the completeness theorem through
// its worst case: high-fanout stars where a single root rename perturbs
// every root-anchored gram, which defeats p=2 grams entirely and leaves
// p=1 only the leaf grams.
func TestPQGramCompleteAdversarial(t *testing.T) {
	star := func(root string, kids int) *ted.Tree {
		n := ted.NewNode(root)
		for i := 0; i < kids; i++ {
			n.Add(ted.NewNode("a"))
		}
		return ted.Build(n)
	}
	trees := []*ted.Tree{
		star("r", 40),
		star("s", 40), // distance 1: rename the root
		star("r", 39), // distance 1: delete a leaf
		ted.MustParse("{x}"),
		ted.MustParse("{y}"), // (3,4) at distance 1 share no gram: fringe case
	}
	ix := index.NewPQGram(1, 2)
	for _, tr := range trees {
		ix.Add(tr)
	}
	var buf []index.Candidate
	for _, tau := range []float64{1.5, 2, 3} {
		for q := range trees {
			buf = ix.CandidatesBelow(q, tau, buf)
			got := map[int]bool{}
			for _, c := range buf {
				got[c.ID] = true
			}
			for j := 0; j < q; j++ {
				if d := ted.Distance(trees[q], trees[j]); d < tau && !got[j] {
					t.Fatalf("tau=%v: true match (%d,%d) at distance %v was not generated", tau, j, q, d)
				}
			}
		}
	}
}

// TestPQGramScore pins the ranking semantics: scores are pq-gram
// distances in [0,1], identical trees score 0, and the scores agree with
// the standalone PQGramDistance.
func TestPQGramScore(t *testing.T) {
	trees := corpus(3, 10, 20)
	trees = append(trees, trees[0]) // a duplicate of tree 0
	ix := index.NewPQGram(1, 2)
	for _, tr := range trees {
		ix.Add(tr)
	}
	q := len(trees) - 1
	buf := ix.CandidatesBelow(q, math.Inf(1), nil)
	found := false
	for _, c := range buf {
		want := index.PQGramDistance(trees[q], trees[c.ID], 1, 2)
		if math.Abs(c.Score-want) > 1e-12 {
			t.Fatalf("candidate %d score %v, want PQGramDistance %v", c.ID, c.Score, want)
		}
		if c.ID == 0 {
			found = true
			if c.Score != 0 {
				t.Fatalf("duplicate tree scored %v, want 0", c.Score)
			}
		}
	}
	if !found {
		t.Fatal("duplicate of tree 0 was not generated")
	}
}

// TestPQGramDistanceBasics pins the standalone distance: 0 for identical
// trees, 1 for fully disjoint profiles, symmetric in between.
func TestPQGramDistanceBasics(t *testing.T) {
	f := ted.MustParse("{a{b}{c}}")
	g := ted.MustParse("{x{y}{z}}")
	if d := index.PQGramDistance(f, f, 2, 3); d != 0 {
		t.Fatalf("self distance %v, want 0", d)
	}
	if d := index.PQGramDistance(f, g, 2, 3); d != 1 {
		t.Fatalf("disjoint distance %v, want 1", d)
	}
	h := ted.MustParse("{a{b}{z}}")
	if d1, d2 := index.PQGramDistance(f, h, 2, 3), index.PQGramDistance(h, f, 2, 3); d1 != d2 || d1 <= 0 || d1 >= 1 {
		t.Fatalf("partial-overlap distance %v/%v, want symmetric in (0,1)", d1, d2)
	}
}

// TestCandidatesBelowEdgeCases covers q=0 (nothing below), tau=0 (nothing
// matches) and single-node trees.
func TestCandidatesBelowEdgeCases(t *testing.T) {
	trees := []*ted.Tree{ted.MustParse("{a}"), ted.MustParse("{a}"), ted.MustParse("{b}")}
	h := index.NewHistogram()
	p := index.NewPQGram(1, 2)
	for _, tr := range trees {
		h.Add(tr)
		p.Add(tr)
	}
	if got := h.CandidatesBelow(0, 10, nil); len(got) != 0 {
		t.Fatalf("q=0 generated %v", got)
	}
	if got := p.CandidatesBelow(2, 0, nil); len(got) != 0 {
		t.Fatalf("tau=0 generated %v", got)
	}
	if got := h.CandidatesBelow(1, 0.5, nil); len(got) != 1 || got[0].ID != 0 || got[0].LB != 0 {
		t.Fatalf("identical single-node trees: %v", got)
	}
	if got := p.CandidatesBelow(2, 2, nil); len(got) != 2 {
		t.Fatalf("single-node fringe at tau=2: %v, want both earlier trees", got)
	}
}
