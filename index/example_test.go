package index_test

import (
	"fmt"

	ted "repro"
	"repro/index"
)

// The standalone pq-gram distance: a fast structural pseudo-metric in
// [0, 1]. Identical trees score 0; trees sharing no local structure
// score 1. It is not a lower bound of the tree edit distance — use it to
// rank candidates, not to prune exactly.
func ExamplePQGramDistance() {
	f := ted.MustParse("{a{b}{c}}")
	g := ted.MustParse("{a{b}{d}}")
	h := ted.MustParse("{x{y}{z}}")
	fmt.Printf("d(f,f) = %.2f\n", index.PQGramDistance(f, f, 2, 3))
	fmt.Printf("d(f,g) = %.2f\n", index.PQGramDistance(f, g, 2, 3)) // c→d perturbs 2/3 of the grams
	fmt.Printf("d(f,h) = %.2f\n", index.PQGramDistance(f, h, 2, 3))
	// Output:
	// d(f,f) = 0.00
	// d(f,g) = 0.67
	// d(f,h) = 1.00
}

// Probe-below candidate generation: index the corpus once, then ask each
// tree for the earlier trees it could possibly match. Unordered pairs
// come out exactly once.
func ExampleHistogram() {
	ix := index.NewHistogram()
	for _, s := range []string{"{a{b}{c}}", "{a{b}}", "{x{y}{z}}", "{a{b}{c}{d}}"} {
		ix.Add(ted.MustParse(s))
	}
	for q := 1; q < ix.Len(); q++ {
		for _, c := range ix.CandidatesBelow(q, 2, nil) {
			fmt.Printf("candidate pair (%d, %d), lower bound %g\n", c.ID, q, c.LB)
		}
	}
	// Output:
	// candidate pair (0, 1), lower bound 1
	// candidate pair (0, 3), lower bound 1
}
