package index_test

import (
	"math/rand"
	"sync"
	"testing"

	ted "repro"
	"repro/gen"
	"repro/index"
)

// TestShardContention hammers one index from many goroutines — stable-id
// Puts, Deletes, auto-id Adds, explicit Compacts and CandidatesBelow
// probes, all interleaved — and then checks the quiescent index against a
// fresh build. Run under -race this is the shard-locking contract: probes
// and mutations may overlap arbitrarily without a data race, and the
// final state is exactly the surviving trees. (The CI race job runs the
// whole package with -race, so this test is the contention workload it
// exercises.)
func TestShardContention(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const n = 48
	var trees, alts []*ted.Tree
	for i := 0; i < n; i++ {
		spec := gen.RandomSpec{Size: 1 + rng.Intn(30), MaxDepth: 6, MaxFanout: 4, Labels: 5}
		trees = append(trees, gen.Random(rng.Int63(), spec))
		alts = append(alts, gen.Random(rng.Int63(), spec))
	}
	for name, build := range map[string]func() mutableIndex{
		"histogram": func() mutableIndex { return index.NewHistogram() },
		"pqgram":    func() mutableIndex { return index.NewPQGram(1, 2) },
	} {
		t.Run(name, func(t *testing.T) {
			ix := build()
			for id, tr := range trees {
				ix.Put(id, tr)
			}
			var wg sync.WaitGroup
			// Writers: each owns a disjoint id stripe, so the final
			// state is deterministic even though the interleaving isn't.
			const writers = 4
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for round := 0; round < 3; round++ {
						for id := w; id < n; id += writers {
							switch (id + round) % 3 {
							case 0:
								ix.Delete(id)
							case 1:
								ix.Put(id, alts[id])
							default:
								ix.Put(id, trees[id])
							}
						}
					}
				}(w)
			}
			// Probers: sweep every query at a moderate threshold while
			// the writers churn. Results are unusable mid-flight; the
			// point is that they are race- and panic-free.
			for p := 0; p < 4; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					var buf []index.Candidate
					for round := 0; round < 6; round++ {
						for q := 0; q < n; q++ {
							buf = ix.CandidatesBelow(q, 8, buf)
						}
						if p == 0 {
							ix.Compact()
						}
					}
				}(p)
			}
			wg.Wait()

			// Quiescent check: round 2 was the last writer pass, so the
			// final tree under each id is determined by (id+2)%3.
			fresh := build()
			var live []int
			finalTree := map[int]*ted.Tree{}
			for id := 0; id < n; id++ {
				switch (id + 2) % 3 {
				case 0:
					continue // deleted
				case 1:
					finalTree[id] = alts[id]
				default:
					finalTree[id] = trees[id]
				}
				fresh.Put(id, finalTree[id])
				live = append(live, id)
			}
			ix.Compact()
			for _, q := range live {
				want := fresh.CandidatesBelow(q, 8, nil)
				got := ix.CandidatesBelow(q, 8, nil)
				if len(want) != len(got) {
					t.Fatalf("q=%d: %d candidates, want %d", q, len(got), len(want))
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("q=%d: candidate %d = %+v, want %+v", q, i, got[i], want[i])
					}
				}
			}
		})
	}
}
