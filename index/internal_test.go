package index

import (
	"math"
	"testing"
)

func TestMaxOpsBelow(t *testing.T) {
	cases := []struct {
		tau  float64
		want int
	}{
		{-1, -1}, {0, -1}, {0.5, 0}, {1, 0}, {1.5, 1}, {3, 2}, {3.0001, 3},
		{4, 3}, {math.Inf(1), math.MaxInt32}, {1e300, math.MaxInt32},
	}
	for _, c := range cases {
		if got := maxOpsBelow(c.tau); got != c.want {
			t.Errorf("maxOpsBelow(%v) = %d, want %d", c.tau, got, c.want)
		}
	}
}

func TestSmallIDsOrderedAndBounded(t *testing.T) {
	var iv inverted
	sizes := []int{5, 2, 9, 2, 7}
	for id, n := range sizes {
		iv.put(id, n, nil)
	}
	sc := getScratch()
	defer sc.release()
	iv.smallIDs(5, sc)
	want := []int32{1, 3, 0}
	if len(sc.fringe) != len(want) {
		t.Fatalf("smallIDs(5) = %v, want %v", sc.fringe, want)
	}
	for i := range want {
		if sc.fringe[i] != want[i] {
			t.Fatalf("smallIDs(5) = %v, want %v", sc.fringe, want)
		}
	}
	sc.fringe = sc.fringe[:0]
	iv.smallIDs(100, sc)
	if len(sc.fringe) != len(sizes) {
		t.Fatalf("smallIDs(100) covers %d trees, want %d", len(sc.fringe), len(sizes))
	}
	// Deleting drops a tree from the sweep after the lazy rebuild.
	iv.delete(1)
	sc.fringe = sc.fringe[:0]
	iv.smallIDs(5, sc)
	want = []int32{3, 0}
	if len(sc.fringe) != len(want) || sc.fringe[0] != want[0] || sc.fringe[1] != want[1] {
		t.Fatalf("smallIDs(5) after delete = %v, want %v", sc.fringe, want)
	}
}

// TestTombstoneAndCompaction drives the generation machinery directly:
// replaced and deleted trees stop being visible to probes, and a
// compaction physically drops their postings without changing the view.
func TestTombstoneAndCompaction(t *testing.T) {
	var iv inverted
	prof := func(kcs ...keyCount) []keyCount { return kcs }
	iv.put(0, 3, prof(keyCount{0, 2}, keyCount{1, 1}))
	iv.put(1, 2, prof(keyCount{0, 1}, keyCount{2, 1}))
	iv.put(2, 4, prof(keyCount{0, 4}))

	count := func(q int) map[int32]int32 {
		sc := getScratch()
		defer sc.release()
		if _, _, ok := iv.accumulate(q, sc); !ok {
			return nil
		}
		out := map[int32]int32{}
		for _, tr := range sc.touched {
			out[tr] = sc.common[tr]
		}
		return out
	}

	if got := count(2); got[0] != 2 || got[1] != 1 {
		t.Fatalf("initial probe of 2: %v", got)
	}
	// Replace tree 0: smaller overlap under the new profile.
	iv.put(0, 3, prof(keyCount{0, 1}))
	if got := count(2); got[0] != 1 {
		t.Fatalf("probe after replace: %v", got)
	}
	if iv.dead.Load() == 0 {
		t.Fatal("replace left no tombstones")
	}
	iv.delete(1)
	if got := count(2); got[1] != 0 {
		t.Fatalf("probe sees deleted tree: %v", got)
	}
	before := count(2)
	iv.compact()
	if iv.dead.Load() != 0 {
		t.Fatalf("compaction left %d tombstones", iv.dead.Load())
	}
	after := count(2)
	if len(before) != len(after) || before[0] != after[0] {
		t.Fatalf("compaction changed the probe view: %v -> %v", before, after)
	}
	if iv.liveCount() != 2 {
		t.Fatalf("live count %d, want 2", iv.liveCount())
	}
}
