package index

import (
	"math"
	"testing"
)

func TestMaxOpsBelow(t *testing.T) {
	cases := []struct {
		tau  float64
		want int
	}{
		{-1, -1}, {0, -1}, {0.5, 0}, {1, 0}, {1.5, 1}, {3, 2}, {3.0001, 3},
		{4, 3}, {math.Inf(1), math.MaxInt32}, {1e300, math.MaxInt32},
	}
	for _, c := range cases {
		if got := maxOpsBelow(c.tau); got != c.want {
			t.Errorf("maxOpsBelow(%v) = %d, want %d", c.tau, got, c.want)
		}
	}
}

func TestSmallIDsOrderedAndBounded(t *testing.T) {
	var c corpus
	sizes := []int{5, 2, 9, 2, 7}
	for _, n := range sizes {
		c.add(n, nil)
	}
	got := c.smallIDs(5)
	want := []int32{1, 3, 0}
	if len(got) != len(want) {
		t.Fatalf("smallIDs(5) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("smallIDs(5) = %v, want %v", got, want)
		}
	}
	if n := len(c.smallIDs(100)); n != len(sizes) {
		t.Fatalf("smallIDs(100) covers %d trees, want %d", n, len(sizes))
	}
}
