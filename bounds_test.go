package ted_test

import (
	"testing"

	ted "repro"
	"repro/gen"
)

func TestPublicBounds(t *testing.T) {
	for i := int64(0); i < 20; i++ {
		f := gen.Random(i, gen.RandomSpec{Size: 30, MaxDepth: 7, MaxFanout: 4, Labels: 3})
		g := gen.Random(i+100, gen.RandomSpec{Size: 25, MaxDepth: 7, MaxFanout: 4, Labels: 3})
		exact := ted.Distance(f, g)
		if lb := ted.LowerBound(f, g); lb > exact {
			t.Fatalf("LowerBound %v > exact %v", lb, exact)
		}
		if ub := ted.ConstrainedDistance(f, g); ub < exact {
			t.Fatalf("ConstrainedDistance %v < exact %v", ub, exact)
		}
	}
}

func TestPublicPQGram(t *testing.T) {
	f := ted.MustParse("{a{b}{c}}")
	g := ted.MustParse("{a{b}{d}}")
	d := ted.PQGramDistance(f, g, 2, 3)
	if d <= 0 || d >= 1 {
		t.Fatalf("pq-gram distance %v, want strictly inside (0,1)", d)
	}
	if ted.PQGramDistance(f, f, 2, 3) != 0 {
		t.Fatal("pq-gram self distance")
	}
}

// TestDistanceBoundedSkipsDP pins the bound-prefilter path: when the
// cheap lower bounds of the bounds.Profile pipeline already exceed tau,
// DistanceBounded must answer without launching the DP at all — zero
// subproblems evaluated — and report the profile bound itself.
func TestDistanceBoundedSkipsDP(t *testing.T) {
	f := gen.LeftBranch(40)
	g := ted.MustParse("{x}")
	lb := ted.LowerBound(f, g)
	if lb < 39 {
		t.Fatalf("size bound %v, want ≥ 39", lb)
	}
	var st ted.Stats
	got, ok := ted.DistanceBounded(f, g, 10, ted.WithStats(&st))
	if ok {
		t.Fatalf("distance ≥ %v reported within tau=10", lb)
	}
	if got != lb {
		t.Fatalf("skip path returned %v, want the profile bound %v", got, lb)
	}
	if st.Subproblems != 0 || st.PrunedSubproblems != 0 {
		t.Fatalf("DP ran despite lb %v > tau: %+v", lb, st)
	}
}

// TestDistanceBoundedPrunesDP pins the cutoff path: a same-size
// shape pair defeats the cheap bounds (lb below tau), so the DP must
// engage — and with the cutoff threaded in it decides the verdict while
// touching strictly fewer cells than the exact run. The chain-vs-binary
// pair has a huge height offset, so the default banded run is expected
// to refuse the root keyroot subproblem outright (PrunedKeyroots > 0,
// zero cells computed); with banding off the per-cell slack predicate
// must still prune, one cell at a time, with zero BandSkippedCells.
func TestDistanceBoundedPrunesDP(t *testing.T) {
	f := gen.LeftBranch(60)
	g := gen.FullBinary(63)
	var est ted.Stats
	d := ted.Distance(f, g, ted.WithStats(&est))
	lb := ted.LowerBound(f, g)
	tau := lb + 1
	if tau >= d {
		t.Fatalf("scenario broken: lb+1 = %v not under d = %v", tau, d)
	}
	var st ted.Stats
	got, ok := ted.DistanceBounded(f, g, tau, ted.WithStats(&st))
	if ok || got < tau {
		t.Fatalf("DistanceBounded(tau=%v) = (%v, %v) with d = %v", tau, got, ok, d)
	}
	if st.Subproblems == 0 && st.PrunedSubproblems == 0 {
		t.Fatal("DP never engaged — the prefilter should not fire here")
	}
	if st.PrunedSubproblems == 0 || st.Subproblems >= est.Subproblems {
		t.Fatalf("cutoff pruned nothing: bounded %d cells (%d pruned), exact %d",
			st.Subproblems, st.PrunedSubproblems, est.Subproblems)
	}
	if st.PrunedKeyroots == 0 {
		t.Fatalf("height offset %d vs tau %v should trip the keyroot band: %+v",
			59, tau, st)
	}

	var un ted.Stats
	gotU, okU := ted.DistanceBounded(f, g, tau, ted.WithStats(&un), ted.WithBanding(false))
	if okU != ok || gotU != got {
		t.Fatalf("unbanded verdict differs: (%v, %v) vs (%v, %v)", gotU, okU, got, ok)
	}
	if un.BandSkippedCells != 0 || un.PrunedKeyroots != 0 {
		t.Fatalf("banding off must not report band pruning: %+v", un)
	}
	if un.Subproblems == 0 || un.PrunedSubproblems == 0 {
		t.Fatalf("unbanded run should compute and prune cells: %+v", un)
	}
	if st.Subproblems >= un.Subproblems {
		t.Fatalf("band should compute strictly fewer cells: banded %d, unbanded %d",
			st.Subproblems, un.Subproblems)
	}
}

func TestJoinWorkersAndFilters(t *testing.T) {
	var trees []*ted.Tree
	for i := int64(0); i < 8; i++ {
		trees = append(trees, gen.TreeFamLike(i, 41))
	}
	tau := 30.0
	base := ted.Join(trees, tau)
	par := ted.Join(trees, tau, ted.WithWorkers(4))
	if len(par.Pairs) != len(base.Pairs) || par.Subproblems != base.Subproblems {
		t.Fatalf("parallel join differs: %d/%d pairs, %d/%d subproblems",
			len(par.Pairs), len(base.Pairs), par.Subproblems, base.Subproblems)
	}
	filt := ted.Join(trees, tau, ted.WithFilters())
	if len(filt.Pairs) != len(base.Pairs) {
		t.Fatalf("filtered join found %d pairs, want %d", len(filt.Pairs), len(base.Pairs))
	}
	if filt.LowerPruned+filt.UpperAccepted+filt.ExactComputed != filt.Comparisons {
		t.Fatalf("filter accounting inconsistent: %+v", filt)
	}
	// Filters skip work: never more subproblems than the plain join.
	if filt.Subproblems > base.Subproblems {
		t.Fatalf("filtered join computed more subproblems (%d) than plain (%d)",
			filt.Subproblems, base.Subproblems)
	}
	// Filtered joins reject non-unit cost models loudly.
	defer func() {
		if recover() == nil {
			t.Fatal("filtered join with weighted costs did not panic")
		}
	}()
	ted.Join(trees, tau, ted.WithFilters(), ted.WithCost(ted.WeightedCost(2, 2, 2)))
}

// TestJoinWithIndex checks the public indexed-join path: every mode must
// reproduce the enumerating join's match set exactly, visit no more
// pairs, and report which generator ran.
func TestJoinWithIndex(t *testing.T) {
	var trees []*ted.Tree
	for i := int64(0); i < 10; i++ {
		trees = append(trees, gen.TreeFamLike(i, 35))
	}
	tau := 20.0
	base := ted.Join(trees, tau, ted.WithFilters())
	for _, mode := range []ted.IndexMode{ted.IndexAuto, ted.IndexEnumerate, ted.IndexHistogram, ted.IndexPQGram} {
		r := ted.Join(trees, tau, ted.WithIndex(mode), ted.WithWorkers(4))
		if len(r.Pairs) != len(base.Pairs) {
			t.Fatalf("mode %v: %d pairs, want %d", mode, len(r.Pairs), len(base.Pairs))
		}
		for k := range base.Pairs {
			if r.Pairs[k] != base.Pairs[k] {
				t.Fatalf("mode %v pair %d: %+v, want %+v", mode, k, r.Pairs[k], base.Pairs[k])
			}
		}
		if r.Comparisons > base.Comparisons {
			t.Fatalf("mode %v visited %d pairs, enumeration %d", mode, r.Comparisons, base.Comparisons)
		}
		if mode != ted.IndexAuto && r.Mode != mode {
			t.Fatalf("mode %v: result reports %v", mode, r.Mode)
		}
	}
	// Indexed joins reject non-unit cost models loudly.
	defer func() {
		if recover() == nil {
			t.Fatal("indexed join with weighted costs did not panic")
		}
	}()
	ted.Join(trees, tau, ted.WithIndex(ted.IndexAuto), ted.WithCost(ted.WeightedCost(2, 2, 2)))
}
