package ted_test

import (
	"testing"

	ted "repro"
	"repro/gen"
)

func TestPublicBounds(t *testing.T) {
	for i := int64(0); i < 20; i++ {
		f := gen.Random(i, gen.RandomSpec{Size: 30, MaxDepth: 7, MaxFanout: 4, Labels: 3})
		g := gen.Random(i+100, gen.RandomSpec{Size: 25, MaxDepth: 7, MaxFanout: 4, Labels: 3})
		exact := ted.Distance(f, g)
		if lb := ted.LowerBound(f, g); lb > exact {
			t.Fatalf("LowerBound %v > exact %v", lb, exact)
		}
		if ub := ted.ConstrainedDistance(f, g); ub < exact {
			t.Fatalf("ConstrainedDistance %v < exact %v", ub, exact)
		}
	}
}

func TestPublicPQGram(t *testing.T) {
	f := ted.MustParse("{a{b}{c}}")
	g := ted.MustParse("{a{b}{d}}")
	d := ted.PQGramDistance(f, g, 2, 3)
	if d <= 0 || d >= 1 {
		t.Fatalf("pq-gram distance %v, want strictly inside (0,1)", d)
	}
	if ted.PQGramDistance(f, f, 2, 3) != 0 {
		t.Fatal("pq-gram self distance")
	}
}

func TestJoinWorkersAndFilters(t *testing.T) {
	var trees []*ted.Tree
	for i := int64(0); i < 8; i++ {
		trees = append(trees, gen.TreeFamLike(i, 41))
	}
	tau := 30.0
	base := ted.Join(trees, tau)
	par := ted.Join(trees, tau, ted.WithWorkers(4))
	if len(par.Pairs) != len(base.Pairs) || par.Subproblems != base.Subproblems {
		t.Fatalf("parallel join differs: %d/%d pairs, %d/%d subproblems",
			len(par.Pairs), len(base.Pairs), par.Subproblems, base.Subproblems)
	}
	filt := ted.Join(trees, tau, ted.WithFilters())
	if len(filt.Pairs) != len(base.Pairs) {
		t.Fatalf("filtered join found %d pairs, want %d", len(filt.Pairs), len(base.Pairs))
	}
	if filt.LowerPruned+filt.UpperAccepted+filt.ExactComputed != filt.Comparisons {
		t.Fatalf("filter accounting inconsistent: %+v", filt)
	}
	// Filters skip work: never more subproblems than the plain join.
	if filt.Subproblems > base.Subproblems {
		t.Fatalf("filtered join computed more subproblems (%d) than plain (%d)",
			filt.Subproblems, base.Subproblems)
	}
	// Filtered joins reject non-unit cost models loudly.
	defer func() {
		if recover() == nil {
			t.Fatal("filtered join with weighted costs did not panic")
		}
	}()
	ted.Join(trees, tau, ted.WithFilters(), ted.WithCost(ted.WeightedCost(2, 2, 2)))
}

// TestJoinWithIndex checks the public indexed-join path: every mode must
// reproduce the enumerating join's match set exactly, visit no more
// pairs, and report which generator ran.
func TestJoinWithIndex(t *testing.T) {
	var trees []*ted.Tree
	for i := int64(0); i < 10; i++ {
		trees = append(trees, gen.TreeFamLike(i, 35))
	}
	tau := 20.0
	base := ted.Join(trees, tau, ted.WithFilters())
	for _, mode := range []ted.IndexMode{ted.IndexAuto, ted.IndexEnumerate, ted.IndexHistogram, ted.IndexPQGram} {
		r := ted.Join(trees, tau, ted.WithIndex(mode), ted.WithWorkers(4))
		if len(r.Pairs) != len(base.Pairs) {
			t.Fatalf("mode %v: %d pairs, want %d", mode, len(r.Pairs), len(base.Pairs))
		}
		for k := range base.Pairs {
			if r.Pairs[k] != base.Pairs[k] {
				t.Fatalf("mode %v pair %d: %+v, want %+v", mode, k, r.Pairs[k], base.Pairs[k])
			}
		}
		if r.Comparisons > base.Comparisons {
			t.Fatalf("mode %v visited %d pairs, enumeration %d", mode, r.Comparisons, base.Comparisons)
		}
		if mode != ted.IndexAuto && r.Mode != mode {
			t.Fatalf("mode %v: result reports %v", mode, r.Mode)
		}
	}
	// Indexed joins reject non-unit cost models loudly.
	defer func() {
		if recover() == nil {
			t.Fatal("indexed join with weighted costs did not panic")
		}
	}()
	ted.Join(trees, tau, ted.WithIndex(ted.IndexAuto), ted.WithCost(ted.WeightedCost(2, 2, 2)))
}
