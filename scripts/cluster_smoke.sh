#!/usr/bin/env bash
# Cluster smoke: the scale-out stack end to end, from the shell.
#
#   1. Two tedc workers load one snapshot; the command-line coordinator
#      (`tedc join`) partitions the similarity join over them and the
#      merged output must be byte-identical to the offline single-node
#      `ted -join -corpus-load` over the same snapshot and tau.
#   2. A tedd primary serves the corpus with a WAL; two tedd followers
#      attach with -follow, ship its checkpoint, tail the replicated
#      log, converge, refuse writes with 403, and serve a mutation made
#      on the primary after they attached.
#   3. A gateway tedd with -cluster-workers proxies /v1/join to the
#      worker fleet; its answer must also match the offline join.
#   4. tedload drives a read-only mix round-robin across both followers
#      (-url a,b); the emitted multi-target BENCH_serve.json must pass
#      `tedload -check`, count zero errors, and carry both targets.
#
# Run from the repository root: ./scripts/cluster_smoke.sh
# BENCH_OUT (optional) names where the tedload artifact lands; CI points
# it at the workspace so the cluster perf trajectory can be uploaded.
set -euo pipefail

WORK="$(mktemp -d)"
PPORT="${TEDC_PRIMARY_PORT:-8431}"
F1PORT="${TEDC_F1_PORT:-8432}"
F2PORT="${TEDC_F2_PORT:-8433}"
GWPORT="${TEDC_GW_PORT:-8434}"
W1PORT="${TEDC_W1_PORT:-7411}"
W2PORT="${TEDC_W2_PORT:-7412}"
BENCH_OUT="${BENCH_OUT:-$WORK/BENCH_serve.json}"
PIDS=()
cleanup() {
  for p in "${PIDS[@]}"; do kill "$p" 2>/dev/null || true; done
  wait 2>/dev/null || true # let the daemons drain + checkpoint before the workdir goes
  rm -rf "$WORK" 2>/dev/null || true
}
trap cleanup EXIT

wait_http() { # wait_http URL [tries]
  local url="$1" tries="${2:-50}"
  for i in $(seq 1 "$tries"); do
    if curl -sf "$url" > /dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "never became reachable: $url"; return 1
}

wait_tcp() { # wait_tcp PORT
  local port="$1"
  for i in $(seq 1 50); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null; then exec 3>&- 3<&-; return 0; fi
    sleep 0.2
  done
  echo "worker never listened on :$port"; return 1
}

echo "== fixture + offline join (cmd/ted)"
go run ./cmd/tedgen -shape random -size 60 -count 24 -labels 12 -seed 7 > "$WORK/trees.txt"
go run ./cmd/tedgen -shape random -size 60 -count 24 -labels 12 -seed 8 >> "$WORK/trees.txt"
go run ./cmd/ted -join -tau 25 -index histogram -corpus-save "$WORK/snap.tedc" "$WORK/trees.txt" \
  | grep -v '^#' | sort -n > "$WORK/offline.join"
N_TREES="$(wc -l < "$WORK/trees.txt")"

go build -o "$WORK/tedc" ./cmd/tedc
go build -o "$WORK/tedd" ./cmd/tedd
go build -o "$WORK/tedload" ./cmd/tedload

echo "== two workers + command-line coordinator"
"$WORK/tedc" worker -corpus "$WORK/snap.tedc" -addr "127.0.0.1:${W1PORT}" &
PIDS+=($!)
"$WORK/tedc" worker -corpus "$WORK/snap.tedc" -addr "127.0.0.1:${W2PORT}" &
PIDS+=($!)
wait_tcp "$W1PORT"; wait_tcp "$W2PORT"
WORKERS="127.0.0.1:${W1PORT},127.0.0.1:${W2PORT}"

"$WORK/tedc" join -workers "$WORKERS" -tau 25 -mode histogram \
  | grep -v '^#' | sort -n > "$WORK/cluster.join"
if ! diff -u "$WORK/offline.join" "$WORK/cluster.join"; then
  echo "clustered join diverged from offline cmd/ted"
  exit 1
fi
echo "   $(wc -l < "$WORK/cluster.join") matches identical to offline"

T1="$(sed -n 1p "$WORK/trees.txt")"
TOPK_LINES="$("$WORK/tedc" topk -workers "$WORKERS" -k 5 -query "$T1" | grep -cv '^#')"
if [ "$TOPK_LINES" != 5 ]; then
  echo "distributed topk returned $TOPK_LINES results, want 5"
  exit 1
fi
echo "   distributed topk returned 5 results"

echo "== primary + two WAL-shipped followers"
cp "$WORK/snap.tedc" "$WORK/primary.tedc"
"$WORK/tedd" -corpus "$WORK/primary.tedc" -addr "127.0.0.1:${PPORT}" &
PIDS+=($!)
wait_http "http://127.0.0.1:${PPORT}/healthz"
for port in "$F1PORT" "$F2PORT"; do
  "$WORK/tedd" -corpus "$WORK/follower${port}.tedc" -addr "127.0.0.1:${port}" \
    -follow "http://127.0.0.1:${PPORT}" &
  PIDS+=($!)
done
for port in "$F1PORT" "$F2PORT"; do
  wait_http "http://127.0.0.1:${port}/healthz"
  for i in $(seq 1 100); do
    if curl -sf "http://127.0.0.1:${port}/v1/stats" \
      | jq -e --argjson n "$N_TREES" '.trees == $n and .read_only and (.replication.lag == 0)' > /dev/null 2>&1
    then break; fi
    if [ "$i" = 100 ]; then
      echo "follower :$port never converged: $(curl -s "http://127.0.0.1:${port}/v1/stats")"
      exit 1
    fi
    sleep 0.2
  done
  echo "   follower :$port converged at $N_TREES trees"
done

echo "== replication of a live mutation"
NEW_ID="$(curl -sf -X POST "http://127.0.0.1:${PPORT}/v1/trees" -H 'Content-Type: application/json' \
  -d "$(jq -cn --arg t "$T1" '{tree: $t}')" | jq -r .id)"
for port in "$F1PORT" "$F2PORT"; do
  for i in $(seq 1 100); do
    GOT="$(curl -sf "http://127.0.0.1:${port}/v1/trees/${NEW_ID}" 2>/dev/null | jq -r .tree || true)"
    if [ "$GOT" = "$T1" ]; then break; fi
    if [ "$i" = 100 ]; then echo "tree $NEW_ID never reached follower :$port"; exit 1; fi
    sleep 0.2
  done
  CODE="$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://127.0.0.1:${port}/v1/trees" \
    -H 'Content-Type: application/json' -d '{"tree":"{a}"}')"
  if [ "$CODE" != 403 ]; then
    echo "follower :$port accepted a write (status $CODE), want 403"
    exit 1
  fi
done
echo "   tree $NEW_ID replicated to both followers; writes refused with 403"

echo "== gateway tedd proxying /v1/join to the worker fleet"
cp "$WORK/snap.tedc" "$WORK/gateway.tedc"
"$WORK/tedd" -corpus "$WORK/gateway.tedc" -addr "127.0.0.1:${GWPORT}" -cluster-workers "$WORKERS" &
PIDS+=($!)
wait_http "http://127.0.0.1:${GWPORT}/healthz"
curl -sf -X POST "http://127.0.0.1:${GWPORT}/v1/join" -H 'Content-Type: application/json' \
  -d '{"tau": 25, "mode": "histogram", "limit": 100000}' \
  | jq -r '.matches[] | "\(.i)\t\(.j)\t\(.dist)"' | sort -n > "$WORK/gateway.join"
if ! diff -u "$WORK/offline.join" "$WORK/gateway.join"; then
  echo "gateway join over the cluster diverged from offline cmd/ted"
  exit 1
fi
echo "   gateway join identical to offline"

echo "== tedload round-robin over both followers (multi-target artifact)"
"$WORK/tedload" -url "http://127.0.0.1:${F1PORT},http://127.0.0.1:${F2PORT}" \
  -mix "distance=4,bounded=3,topk=2" \
  -tau 25 -k 3 -seed 1 -rate 400 -conc 8 -warmup 20 -n 150 \
  -out "$BENCH_OUT" -fail-on-error
"$WORK/tedload" -check "$BENCH_OUT"
ERRS="$(jq '.totals.errors + (.warmup_errors // 0)' "$BENCH_OUT")"
if [ "$ERRS" != "0" ]; then
  echo "tedload counted $ERRS errors"
  exit 1
fi
jq -e '.targets | length == 2' "$BENCH_OUT" > /dev/null \
  || { echo "artifact lacks the two-target breakdown"; exit 1; }
echo "   $(jq -c '{requests: .totals.requests, targets: (.targets | keys)}' "$BENCH_OUT")"

echo "cluster smoke: OK"
