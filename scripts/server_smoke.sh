#!/usr/bin/env bash
# Server smoke: build tedd, start it on a fixture corpus, query
# /v1/distance and /v1/join over real HTTP, and assert the answers match
# the offline cmd/ted output on the same trees. Exercises the whole
# serving stack — corpus codec, WAL-attached Open, warm-up, admission,
# JSON marshalling — then drives a short tedload workload (the emitted
# BENCH_serve.json must validate and count zero errors), and finishes
# with the graceful SIGTERM drain.
#
# Run from the repository root: ./scripts/server_smoke.sh
# BENCH_OUT (optional) names where the tedload artifact lands; CI points
# it at the workspace so the perf trajectory can be uploaded.
set -euo pipefail

WORK="$(mktemp -d)"
PORT="${TEDD_PORT:-8423}"
BASE="http://127.0.0.1:${PORT}"
BENCH_OUT="${BENCH_OUT:-$WORK/BENCH_serve.json}"
TEDD_PID=""
cleanup() {
  [ -n "$TEDD_PID" ] && kill "$TEDD_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== fixture"
go run ./cmd/tedgen -shape random -size 60 -count 24 -labels 12 -seed 7 > "$WORK/trees.txt"
go run ./cmd/tedgen -shape random -size 60 -count 24 -labels 12 -seed 8 >> "$WORK/trees.txt"

echo "== offline join (cmd/ted) + corpus build"
go run ./cmd/ted -join -tau 25 -index histogram -corpus-save "$WORK/trees.tedc" "$WORK/trees.txt" \
  | grep -v '^#' | sort -n > "$WORK/offline.join"

T1="$(sed -n 1p "$WORK/trees.txt")"
T2="$(sed -n 2p "$WORK/trees.txt")"
OFFLINE_DIST="$(go run ./cmd/ted -e "$T1" -e "$T2")"

echo "== start tedd"
go build -o "$WORK/tedd" ./cmd/tedd
"$WORK/tedd" -corpus "$WORK/trees.tedc" -addr "127.0.0.1:${PORT}" &
TEDD_PID=$!
for i in $(seq 1 50); do
  if curl -sf "$BASE/healthz" > /dev/null 2>&1; then break; fi
  if ! kill -0 "$TEDD_PID" 2>/dev/null; then echo "tedd died during startup"; exit 1; fi
  sleep 0.2
done
curl -sf "$BASE/healthz" > /dev/null || { echo "tedd never became healthy"; exit 1; }

echo "== /v1/distance vs offline"
SERVED_DIST="$(curl -sf -X POST "$BASE/v1/distance" \
  -H 'Content-Type: application/json' \
  -d "$(jq -cn --arg f "$T1" --arg g "$T2" '{f: {tree: $f}, g: {tree: $g}}')" \
  | jq -r .dist)"
if [ "$SERVED_DIST" != "$OFFLINE_DIST" ]; then
  echo "distance mismatch: served $SERVED_DIST, offline $OFFLINE_DIST"
  exit 1
fi
echo "   distance $SERVED_DIST == offline"

echo "== /v1/join vs offline"
curl -sf -X POST "$BASE/v1/join" -H 'Content-Type: application/json' \
  -d '{"tau": 25, "mode": "histogram", "limit": 100000}' \
  | jq -r '.matches[] | "\(.i)\t\(.j)\t\(.dist)"' | sort -n > "$WORK/served.join"
if ! diff -u "$WORK/offline.join" "$WORK/served.join"; then
  echo "join mismatch between tedd and cmd/ted"
  exit 1
fi
echo "   $(wc -l < "$WORK/served.join") matches identical"

echo "== /v1/join/stream vs buffered"
curl -sfN -X POST "$BASE/v1/join/stream" -H 'Content-Type: application/json' \
  -d '{"tau": 25, "mode": "histogram", "limit": 100000}' > "$WORK/stream.ndjson"
jq -r 'select(.match) | "\(.match.i)\t\(.match.j)\t\(.match.dist)"' "$WORK/stream.ndjson" \
  | sort -n > "$WORK/streamed.join"
if ! diff -u "$WORK/served.join" "$WORK/streamed.join"; then
  echo "streamed join differs from the buffered one"
  exit 1
fi
DONE_COUNT="$(jq -r 'select(.done) | .done.count' "$WORK/stream.ndjson")"
if [ "$DONE_COUNT" != "$(wc -l < "$WORK/streamed.join")" ]; then
  echo "stream done record counted $DONE_COUNT matches, saw $(wc -l < "$WORK/streamed.join")"
  exit 1
fi
echo "   $DONE_COUNT streamed matches identical, done record present"

echo "== tedload (short mixed workload, open-loop)"
go build -o "$WORK/tedload" ./cmd/tedload
"$WORK/tedload" -url "$BASE" \
  -mix "distance=4,bounded=3,topk=2,join=0.2,mutate=1" \
  -tau 25 -k 3 -seed 1 -rate 400 -conc 8 -warmup 20 -n 150 \
  -out "$BENCH_OUT" -fail-on-error
ERRS="$(jq '.totals.errors + (.warmup_errors // 0)' "$BENCH_OUT")"
if [ "$ERRS" != "0" ]; then
  echo "tedload counted $ERRS errors"
  exit 1
fi
echo "   $(jq -c '{requests: .totals.requests, shed: .totals.shed, p50_ms: .totals.p50_ms, p99_ms: .totals.p99_ms}' "$BENCH_OUT")"

echo "== two-tenant mix (streamed joiner vs point lookups)"
"$WORK/tedload" -url "$BASE" -tenant batch -mix "join_stream=0.5,topk_stream=2" \
  -tau 25 -k 3 -seed 3 -conc 4 -warmup 5 -n 60 \
  -out "$WORK/bench_batch.json" -fail-on-error &
LOAD_PID=$!
"$WORK/tedload" -url "$BASE" -tenant web -mix "distance=1" \
  -tau 25 -seed 4 -conc 4 -warmup 5 -n 60 \
  -out "$WORK/bench_web.json" -fail-on-error
wait "$LOAD_PID"
jq -e '.endpoints.topk_stream.stream.ttfm_p50_ms > 0' "$WORK/bench_batch.json" > /dev/null \
  || { echo "streamed run carried no TTFM histogram"; exit 1; }
STATS="$(curl -sf "$BASE/v1/stats")"
echo "   tenants: $(jq -c .tenants <<<"$STATS")"
jq -e '.tenants.batch.admitted > 0 and .tenants.web.admitted > 0' <<<"$STATS" > /dev/null \
  || { echo "per-tenant admission counters missing from /v1/stats"; exit 1; }

echo "== durable mutation + graceful drain"
NEW_ID="$(curl -sf -X POST "$BASE/v1/trees" -H 'Content-Type: application/json' \
  -d "$(jq -cn --arg t "$T1" '{tree: $t}')" | jq -r .id)"
STATS="$(curl -sf "$BASE/v1/stats")"
echo "   stats: $STATS"
kill -TERM "$TEDD_PID"
wait "$TEDD_PID"
TEDD_PID=""

echo "== restart serves the mutated corpus"
"$WORK/tedd" -corpus "$WORK/trees.tedc" -addr "127.0.0.1:${PORT}" &
TEDD_PID=$!
for i in $(seq 1 50); do
  if curl -sf "$BASE/healthz" > /dev/null 2>&1; then break; fi
  sleep 0.2
done
GOT="$(curl -sf "$BASE/v1/trees/$NEW_ID" | jq -r .tree)"
if [ "$GOT" != "$T1" ]; then
  echo "mutated tree $NEW_ID did not survive the restart"
  exit 1
fi
kill -TERM "$TEDD_PID"; wait "$TEDD_PID"; TEDD_PID=""

echo "server smoke: OK"
