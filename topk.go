package ted

import (
	"repro/batch"
	"repro/corpus"
	"repro/internal/gted"
)

// SubtreeMatch is one result of TopKSubtrees: the subtree of the data
// tree rooted at postorder id Root, at edit distance Dist from the query.
type SubtreeMatch struct {
	Root int
	Dist float64
}

// TopKSubtrees finds the k subtrees of data with the smallest tree edit
// distance to query (the top-k approximate subtree matching problem of
// Augsten et al., discussed in Section 7 of the RTED paper). Ties are
// broken toward smaller postorder ids; results are sorted by distance.
//
// The implementation runs one RTED computation on the batch engine,
// which produces the distances between the query and every subtree of
// data as a byproduct of GTED's distance matrix, then selects the k
// smallest. This is the exact, unpruned baseline of TASM:
// O(|query|·|data|) space and the full RTED time, robust to any tree
// shape. To match one query against many data trees, use the batch
// engine directly and Prepare the query once.
func TopKSubtrees(query, data *Tree, k int, opts ...Option) []SubtreeMatch {
	if k <= 0 {
		return nil
	}
	c := buildConfig(opts)
	if c.alg == ZhangShashaClassic {
		// ZS-classic has no strategy form; serve it with RTED, which
		// dominates it anyway.
		c.alg = RTED
	}
	e := c.batchEngine(1)
	ms, st := e.TopKSubtrees(e.Prepare(query), e.Prepare(data), k)
	if c.stats != nil {
		c.stats.Subproblems = st.Subproblems
		c.stats.SPFCalls = st.SPFCalls
		c.stats.MaxLiveRows = st.MaxLiveRows
	}
	out := make([]SubtreeMatch, len(ms))
	for i, m := range ms {
		out[i] = SubtreeMatch{Root: m.Root, Dist: m.Dist}
	}
	return out
}

// CrossSubtreeMatch is one result of TopKSubtreesAcross: the subtree
// rooted at postorder id Root of the data tree at index Tree, at edit
// distance Dist from the query.
type CrossSubtreeMatch struct {
	Tree int
	Root int
	Dist float64
}

// TopKSubtreesAcross finds the k subtrees closest to the query across a
// whole collection of data trees — the result of running TopKSubtrees on
// every tree and merging, computed far cheaper: data trees stream through
// the batch engine and each GTED run is bounded by the current k-th best
// distance, so DP work shrinks as the results improve (and whole trees
// are skipped once their size alone rules them out, under UnitCost).
// Ties break toward smaller (Tree, Root); results are sorted by distance.
//
// The collection runs through the corpus layer (package corpus), so
// repeated queries against a persistent collection amortize all per-tree
// work: keep a corpus.Corpus (or Load one) and call Corpus.TopKAcross
// with a corpus-attached engine.
func TopKSubtreesAcross(query *Tree, data []*Tree, k int, opts ...Option) []CrossSubtreeMatch {
	if k <= 0 || len(data) == 0 {
		return nil
	}
	c := buildConfig(opts)
	if c.alg == ZhangShashaClassic {
		c.alg = RTED // no strategy form; RTED dominates it anyway
	}
	cp := corpus.New()
	pos := make(map[corpus.ID]int, len(data))
	for i, t := range data {
		pos[cp.Add(t)] = i
	}
	e := cp.Engine(c.batchOpts(1)...)
	cms, st := cp.TopKAcross(e, e.Prepare(query), k)
	ms := make([]batch.CrossMatch, len(cms))
	for i, m := range cms {
		ms[i] = batch.CrossMatch{Tree: pos[m.Tree], Root: m.Root, Dist: m.Dist}
	}
	if c.stats != nil {
		c.stats.Subproblems = st.Subproblems
		c.stats.PrunedSubproblems = st.PrunedSubproblems
		c.stats.BandSkippedCells = st.BandSkippedCells
		c.stats.PrunedKeyroots = st.PrunedKeyroots
		c.stats.CompressedRows = st.CompressedRows
		c.stats.RowCells = st.RowCells
		c.stats.SPFCalls = st.SPFCalls
		c.stats.MaxLiveRows = st.MaxLiveRows
	}
	out := make([]CrossSubtreeMatch, len(ms))
	for i, m := range ms {
		out[i] = CrossSubtreeMatch{Tree: m.Tree, Root: m.Root, Dist: m.Dist}
	}
	return out
}

// SubtreeDistances computes the full |f|×|g| matrix of subtree-pair
// distances δ(F_v, G_w) — GTED fills it as part of any distance
// computation, and several applications (joins with common subtrees,
// top-k matching, change hot-spot detection) consume it directly.
func SubtreeDistances(f, g *Tree, opts ...Option) *DistMatrix {
	c := buildConfig(opts)
	alg := c.alg
	if alg == ZhangShashaClassic {
		alg = ZhangL
	}
	// A private runner (no shared arena): the returned matrix is live
	// after this call and must not be recycled under the caller.
	run := gted.New(f, g, c.model, StrategyFor(alg, f, g))
	run.Run()
	if c.stats != nil {
		c.stats.Subproblems = run.Stats().Subproblems
	}
	return &DistMatrix{nf: f.Len(), ng: g.Len(), d: run.Matrix()}
}

// DistMatrix is a read-only |F|×|G| matrix of subtree-pair distances.
type DistMatrix struct {
	nf, ng int
	d      []float64
}

// At returns δ(F_v, G_w) for postorder ids v, w.
func (m *DistMatrix) At(v, w int) float64 { return m.d[v*m.ng+w] }

// Dims returns the matrix dimensions (|F|, |G|).
func (m *DistMatrix) Dims() (int, int) { return m.nf, m.ng }
