package ted

import (
	"container/heap"
	"sort"

	"repro/internal/gted"
)

// SubtreeMatch is one result of TopKSubtrees: the subtree of the data
// tree rooted at postorder id Root, at edit distance Dist from the query.
type SubtreeMatch struct {
	Root int
	Dist float64
}

// TopKSubtrees finds the k subtrees of data with the smallest tree edit
// distance to query (the top-k approximate subtree matching problem of
// Augsten et al., discussed in Section 7 of the RTED paper). Ties are
// broken toward smaller postorder ids; results are sorted by distance.
//
// The implementation runs one RTED computation, which produces the
// distances between the query and every subtree of data as a byproduct
// of GTED's distance matrix, then selects the k smallest. This is the
// exact, unpruned baseline of TASM: O(|query|·|data|) space and the full
// RTED time, robust to any tree shape.
func TopKSubtrees(query, data *Tree, k int, opts ...Option) []SubtreeMatch {
	if k <= 0 {
		return nil
	}
	c := buildConfig(opts)
	alg := c.alg
	if alg == ZhangShashaClassic {
		// ZS-classic has no strategy form; serve it with RTED, which
		// dominates it anyway.
		alg = RTED
	}
	run := gted.New(query, data, c.model, StrategyFor(alg, query, data))
	run.Run()
	if c.stats != nil {
		st := run.Stats()
		c.stats.Subproblems = st.Subproblems
		c.stats.SPFCalls = st.SPFCalls
		c.stats.MaxLiveRows = st.MaxLiveRows
	}

	q := query.Root()
	h := &matchHeap{}
	heap.Init(h)
	for w := 0; w < data.Len(); w++ {
		d := run.Dist(q, w)
		if h.Len() < k {
			heap.Push(h, SubtreeMatch{Root: w, Dist: d})
			continue
		}
		if worse(h.items[0], SubtreeMatch{Root: w, Dist: d}) {
			h.items[0] = SubtreeMatch{Root: w, Dist: d}
			heap.Fix(h, 0)
		}
	}
	out := append([]SubtreeMatch(nil), h.items...)
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

func less(a, b SubtreeMatch) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.Root < b.Root
}

// worse reports whether a is worse (larger) than b in the top-k order.
func worse(a, b SubtreeMatch) bool { return less(b, a) }

// matchHeap is a max-heap on (Dist, Root) so the worst kept match sits
// at the top and is evicted first.
type matchHeap struct{ items []SubtreeMatch }

func (h *matchHeap) Len() int           { return len(h.items) }
func (h *matchHeap) Less(i, j int) bool { return less(h.items[j], h.items[i]) }
func (h *matchHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *matchHeap) Push(x any)         { h.items = append(h.items, x.(SubtreeMatch)) }
func (h *matchHeap) Pop() any {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}

// SubtreeDistances computes the full |f|×|g| matrix of subtree-pair
// distances δ(F_v, G_w) — GTED fills it as part of any distance
// computation, and several applications (joins with common subtrees,
// top-k matching, change hot-spot detection) consume it directly.
func SubtreeDistances(f, g *Tree, opts ...Option) *DistMatrix {
	c := buildConfig(opts)
	alg := c.alg
	if alg == ZhangShashaClassic {
		alg = ZhangL
	}
	run := gted.New(f, g, c.model, StrategyFor(alg, f, g))
	run.Run()
	if c.stats != nil {
		c.stats.Subproblems = run.Stats().Subproblems
	}
	return &DistMatrix{nf: f.Len(), ng: g.Len(), d: run.Matrix()}
}

// DistMatrix is a read-only |F|×|G| matrix of subtree-pair distances.
type DistMatrix struct {
	nf, ng int
	d      []float64
}

// At returns δ(F_v, G_w) for postorder ids v, w.
func (m *DistMatrix) At(v, w int) float64 { return m.d[v*m.ng+w] }

// Dims returns the matrix dimensions (|F|, |G|).
func (m *DistMatrix) Dims() (int, int) { return m.nf, m.ng }
